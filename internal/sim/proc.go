package sim

import "fmt"

// Proc is a handle on a simulation process. Process bodies receive their
// Proc and use it for all time-consuming operations. A Proc must only be
// used from its own goroutine.
type Proc struct {
	eng    *Engine
	resume chan struct{}
	name   string
	dead   bool
	daemon bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn starts fn as a new process at the current simulated time. The
// process begins executing when the engine dispatches its start event, so a
// Spawn from inside another process does not preempt the caller.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// SpawnDaemon starts a server process that is expected to block forever
// (device engine loops draining command queues). Daemons do not count
// toward deadlock detection when the event queue drains.
func (e *Engine) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Engine) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	p := &Proc{eng: e, resume: make(chan struct{}), name: name, daemon: daemon}
	if !daemon {
		e.procs++
	}
	e.Schedule(0, func() {
		go func() {
			<-p.resume
			fn(p)
			p.dead = true
			if !p.daemon {
				e.procs--
			}
			e.token <- struct{}{}
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers control to p and blocks until p yields or finishes.
// It must only be called from the engine loop (inside an event's fire).
func (e *Engine) handoff(p *Proc) {
	e.handoffs++
	p.resume <- struct{}{}
	<-e.token
}

// yield transfers control back to the engine and blocks until some event
// resumes this process.
func (p *Proc) yield() {
	e := p.eng
	e.blocked++
	e.token <- struct{}{}
	<-p.resume
	e.blocked--
}

// wake schedules an immediate event that resumes p. All resumptions flow
// through the event queue so that ordering stays deterministic, but the
// event carries the *Proc directly — no closure is allocated. Waking a
// finished process panics: its goroutine is gone, so the resume could
// never be delivered.
func (p *Proc) wake() {
	if p.dead {
		panic(fmt.Sprintf("sim: wake of finished process %q", p.name))
	}
	p.eng.scheduleProc(p.eng.now, p)
}

// wakeAt resumes p after d elapses.
func (p *Proc) wakeAt(d Duration) {
	p.eng.scheduleProc(p.eng.now.Add(d), p)
}

// Sleep suspends the process for d of simulated time. Sleeping for a
// non-positive duration still yields through the event queue, so Sleep(0)
// lets already-scheduled same-time events run first.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.wakeAt(d)
	p.yield()
}

// Signal is a one-shot broadcast completion event: processes Wait on it and
// all of them resume once Fire is called. Waiting on an already-fired signal
// returns immediately. The zero value is not usable; use NewSignal.
type Signal struct {
	eng     *Engine
	fired   bool
	at      Time
	waiters []*Proc
}

// NewSignal returns a fresh, unfired signal.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// At returns the time the signal fired; valid only after Fired.
func (s *Signal) At() Time { return s.at }

// Fire marks the signal complete and resumes all waiters. Firing twice
// panics: completion events in the model are strictly one-shot.
//
// All waiters resume at the same timestamp in Wait order. A broadcast to
// several waiters is batched into a single event that hands control to each
// in turn — the waiter list transfers to the event as-is, so firing costs
// one heap operation and no allocation regardless of fan-out. The order is
// identical to scheduling one wake per waiter (their events would occupy
// consecutive sequence numbers, with nothing able to interleave).
func (s *Signal) Fire() {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.at = s.eng.now
	switch len(s.waiters) {
	case 0:
	case 1:
		s.waiters[0].wake()
	default:
		for _, w := range s.waiters {
			if w.dead {
				panic(fmt.Sprintf("sim: wake of finished process %q", w.name))
			}
		}
		s.eng.scheduleBatch(s.eng.now, s.waiters)
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires. Returns immediately if it already has.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.yield()
}

// WaitAll blocks p until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}
