package swcrypto

import (
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"math/bits"
)

// This file implements the ChaCha20 stream cipher, the Poly1305 one-time
// authenticator, and their AEAD composition per RFC 8439 — the usual
// software-friendly alternative to AES-GCM on cores without AES-NI, and one
// of the candidate copy-path ciphers in the Fig. 4b trade-off space.

// chachaBlock computes one 64-byte ChaCha20 block for (key, counter, nonce).
func chachaBlock(key *[32]byte, counter uint32, nonce *[12]byte, out *[64]byte) {
	var s [16]uint32
	s[0], s[1], s[2], s[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	for i := 0; i < 8; i++ {
		s[4+i] = binary.LittleEndian.Uint32(key[i*4:])
	}
	s[12] = counter
	s[13] = binary.LittleEndian.Uint32(nonce[0:])
	s[14] = binary.LittleEndian.Uint32(nonce[4:])
	s[15] = binary.LittleEndian.Uint32(nonce[8:])

	w := s
	quarter := func(a, b, c, d int) {
		w[a] += w[b]
		w[d] = bits.RotateLeft32(w[d]^w[a], 16)
		w[c] += w[d]
		w[b] = bits.RotateLeft32(w[b]^w[c], 12)
		w[a] += w[b]
		w[d] = bits.RotateLeft32(w[d]^w[a], 8)
		w[c] += w[d]
		w[b] = bits.RotateLeft32(w[b]^w[c], 7)
	}
	for i := 0; i < 10; i++ {
		quarter(0, 4, 8, 12)
		quarter(1, 5, 9, 13)
		quarter(2, 6, 10, 14)
		quarter(3, 7, 11, 15)
		quarter(0, 5, 10, 15)
		quarter(1, 6, 11, 12)
		quarter(2, 7, 8, 13)
		quarter(3, 4, 9, 14)
	}
	for i := range w {
		binary.LittleEndian.PutUint32(out[i*4:], w[i]+s[i])
	}
}

// ChaCha20XOR encrypts (or decrypts) src into dst with the keystream
// starting at the given block counter. dst and src must be equal length.
func ChaCha20XOR(dst, src []byte, key *[32]byte, nonce *[12]byte, counter uint32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("swcrypto: chacha20 dst/src length mismatch")
	}
	var block [64]byte
	for off := 0; off < len(src); off += 64 {
		chachaBlock(key, counter, nonce, &block)
		counter++
		n := len(src) - off
		if n > 64 {
			n = 64
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ block[i]
		}
	}
	return nil
}

// poly1305 computes the Poly1305 MAC of msg under the 32-byte one-time key,
// using 64x64->128 bit limb arithmetic over 2^130-5.
func poly1305(msg []byte, key *[32]byte) [16]byte {
	// r with the RFC 8439 clamping; split into 26-bit limbs would be
	// faster, but 64-bit limb pairs with 128-bit products keep this short
	// and obviously correct.
	r0 := binary.LittleEndian.Uint64(key[0:8]) & 0x0ffffffc0fffffff
	r1 := binary.LittleEndian.Uint64(key[8:16]) & 0x0ffffffc0ffffffc
	s0 := binary.LittleEndian.Uint64(key[16:24])
	s1 := binary.LittleEndian.Uint64(key[24:32])

	var h0, h1, h2 uint64 // h < 2^130

	for len(msg) > 0 {
		var block [17]byte
		n := copy(block[:16], msg)
		block[n] = 1 // the 2^(8*n) pad bit
		msg = msg[n:]

		// h += block (as a 17-byte little-endian number)
		t0 := binary.LittleEndian.Uint64(block[0:8])
		t1 := binary.LittleEndian.Uint64(block[8:16])
		t2 := uint64(block[16])

		var carry uint64
		h0, carry = bits.Add64(h0, t0, 0)
		h1, carry = bits.Add64(h1, t1, carry)
		h2 += t2 + carry

		// h *= r  (mod 2^130 - 5), schoolbook with 128-bit partials.
		// h = h0 + h1*2^64 + h2*2^128 ; r = r0 + r1*2^64 (r < 2^124).
		m0hi, m0lo := bits.Mul64(h0, r0)
		m1hi, m1lo := bits.Mul64(h0, r1)
		m2hi, m2lo := bits.Mul64(h1, r0)
		m3hi, m3lo := bits.Mul64(h1, r1)
		// h2 is small (< 8): products with it fit in 64 bits.
		m4 := h2 * r0 // contributes at 2^128
		m5 := h2 * r1 // contributes at 2^192 (reduced below)

		// Accumulate the 256-bit product into d[0..3] with full carries.
		var d [4]uint64
		add := func(idx int, v uint64) {
			var c uint64
			d[idx], c = bits.Add64(d[idx], v, 0)
			for i := idx + 1; c != 0 && i < 4; i++ {
				d[i], c = bits.Add64(d[i], 0, c)
			}
		}
		add(0, m0lo)
		add(1, m0hi)
		add(1, m1lo)
		add(2, m1hi)
		add(1, m2lo)
		add(2, m2hi)
		add(2, m3lo)
		add(3, m3hi)
		add(2, m4)
		add(3, m5)

		// Reduce mod 2^130 - 5: fold everything above bit 130 back with
		// multiplier 5 (since 2^130 ≡ 5).
		h0, h1 = d[0], d[1]
		h2 = d[2] & 3
		top := d[2]>>2 | d[3]<<62 // bits 130.. as a 64-bit chunk (low part)
		top2 := d[3] >> 2         // bits 194..

		// h += top*5 + top2*5*2^64
		lo5hi, lo5lo := bits.Mul64(top, 5)
		var c uint64
		h0, c = bits.Add64(h0, lo5lo, 0)
		h1, c = bits.Add64(h1, lo5hi, c)
		h2 += c
		hi5hi, hi5lo := bits.Mul64(top2, 5)
		h1, c = bits.Add64(h1, hi5lo, 0)
		h2 += hi5hi + c

		// One more fold if h2 grew past 2 bits.
		if h2 > 3 {
			extra := h2 >> 2
			h2 &= 3
			h0, c = bits.Add64(h0, extra*5, 0)
			h1, c = bits.Add64(h1, 0, c)
			h2 += c
		}
	}

	// Final reduction: if h >= 2^130-5, subtract the modulus.
	g0, c := bits.Add64(h0, 5, 0)
	g1, c := bits.Add64(h1, 0, c)
	g2 := h2 + c
	if g2>>2 != 0 { // h + 5 >= 2^130: take g
		h0, h1 = g0, g1
	}

	// tag = (h + s) mod 2^128
	h0, c = bits.Add64(h0, s0, 0)
	h1, _ = bits.Add64(h1, s1, c)

	var tag [16]byte
	binary.LittleEndian.PutUint64(tag[0:8], h0)
	binary.LittleEndian.PutUint64(tag[8:16], h1)
	return tag
}

// ChaCha20Poly1305Seal encrypts plaintext and authenticates it with aad,
// returning ciphertext||tag per RFC 8439 section 2.8.
func ChaCha20Poly1305Seal(key *[32]byte, nonce *[12]byte, plaintext, aad []byte) ([]byte, error) {
	// One-time Poly1305 key = first 32 bytes of block 0 keystream.
	var block0 [64]byte
	chachaBlock(key, 0, nonce, &block0)
	var otk [32]byte
	copy(otk[:], block0[:32])

	out := make([]byte, len(plaintext)+16)
	if err := ChaCha20XOR(out[:len(plaintext)], plaintext, key, nonce, 1); err != nil {
		return nil, err
	}
	tag := poly1305(aeadMessage(aad, out[:len(plaintext)]), &otk)
	copy(out[len(plaintext):], tag[:])
	return out, nil
}

// ChaCha20Poly1305Open verifies and decrypts ciphertext||tag.
func ChaCha20Poly1305Open(key *[32]byte, nonce *[12]byte, sealed, aad []byte) ([]byte, error) {
	if len(sealed) < 16 {
		return nil, fmt.Errorf("swcrypto: sealed input shorter than a tag")
	}
	ct := sealed[:len(sealed)-16]
	var block0 [64]byte
	chachaBlock(key, 0, nonce, &block0)
	var otk [32]byte
	copy(otk[:], block0[:32])
	tag := poly1305(aeadMessage(aad, ct), &otk)
	if subtle.ConstantTimeCompare(tag[:], sealed[len(sealed)-16:]) != 1 {
		return nil, fmt.Errorf("swcrypto: chacha20-poly1305 authentication failed")
	}
	out := make([]byte, len(ct))
	if err := ChaCha20XOR(out, ct, key, nonce, 1); err != nil {
		return nil, err
	}
	return out, nil
}

// aeadMessage builds the Poly1305 input: aad || pad16 || ct || pad16 ||
// len(aad) || len(ct), each length as a 64-bit little-endian value.
func aeadMessage(aad, ct []byte) []byte {
	pad := func(n int) int { return (16 - n%16) % 16 }
	msg := make([]byte, 0, len(aad)+pad(len(aad))+len(ct)+pad(len(ct))+16)
	msg = append(msg, aad...)
	msg = append(msg, make([]byte, pad(len(aad)))...)
	msg = append(msg, ct...)
	msg = append(msg, make([]byte, pad(len(ct)))...)
	var lens [16]byte
	binary.LittleEndian.PutUint64(lens[0:8], uint64(len(aad)))
	binary.LittleEndian.PutUint64(lens[8:16], uint64(len(ct)))
	return append(msg, lens[:]...)
}
