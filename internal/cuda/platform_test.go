package cuda

import (
	"reflect"
	"strings"
	"testing"

	"hccsim/internal/ccmode"
	"hccsim/internal/platform"
)

// TestExplicitDefaultPlatformByteIdentical is the refactor's core identity:
// naming the default platform explicitly must produce exactly the config the
// legacy constructors build, field for field — otherwise cache keys split
// and golden figures drift.
func TestExplicitDefaultPlatformByteIdentical(t *testing.T) {
	for _, mode := range append(ccmode.Names(), "tdx-h100+pipelined") {
		viaDefault, err := NewConfig(mode)
		if err != nil {
			t.Fatalf("NewConfig(%s): %v", mode, err)
		}
		viaPlatform, err := PlatformConfig("h100-tdx", mode)
		if err != nil {
			t.Fatalf("PlatformConfig(h100-tdx, %s): %v", mode, err)
		}
		if !reflect.DeepEqual(viaDefault, viaPlatform) {
			t.Errorf("mode %s: NewConfig and PlatformConfig(h100-tdx) differ:\n%+v\nvs\n%+v",
				mode, viaDefault, viaPlatform)
		}
	}
}

// TestDefaultConfigMatchesProfile pins the legacy boolean constructor to the
// default profile's data.
func TestDefaultConfigMatchesProfile(t *testing.T) {
	for _, cc := range []bool{false, true} {
		cfg := DefaultConfig(cc)
		if cfg.CC != cc {
			t.Errorf("DefaultConfig(%v).CC = %v", cc, cfg.CC)
		}
		if cfg.Platform != platform.Default {
			t.Errorf("DefaultConfig(%v).Platform = %q, want %q", cc, cfg.Platform, platform.Default)
		}
		p := platform.MustByName(platform.Default)
		if cfg.TDX != p.TDX || cfg.PCIe != p.PCIe || cfg.HBM != p.HBM ||
			cfg.UVM != p.UVM || cfg.GPU != p.GPU || cfg.Host != p.Host || cfg.NVLink != p.NVLink {
			t.Errorf("DefaultConfig(%v) params differ from the %s profile", cc, platform.Default)
		}
	}
}

func TestPlatformConfigRejectsIllegalPair(t *testing.T) {
	_, err := PlatformConfig("b300-bridge", "tdx-h100")
	if err == nil {
		t.Fatal("PlatformConfig accepted tdx-h100 on b300-bridge")
	}
	if !strings.Contains(err.Error(), "tee-io-bridge") {
		t.Errorf("error %q does not list the platform's legal modes", err)
	}
	if _, err := PlatformConfig("nonesuch", "off"); err == nil {
		t.Fatal("PlatformConfig accepted an unknown platform")
	}
	if _, err := PlatformConfig("h100-tdx", "nonesuch"); err == nil {
		t.Fatal("PlatformConfig accepted an unknown mode")
	}
}

func TestNormalizeCanonicalizesPlatform(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.Platform = "" // spell the default implicitly
	cfg.Mode = "TDX-H100"
	n, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Platform != platform.Default || n.Mode != "tdx-h100" || !n.CC {
		t.Errorf("Normalize() = platform %q mode %q cc %v", n.Platform, n.Mode, n.CC)
	}

	// Aliased spellings normalize to the same canonical config.
	a, err := PlatformBase("b300")
	if err != nil {
		t.Fatal(err)
	}
	if a.Platform != "b300-bridge" {
		t.Errorf("PlatformBase(b300).Platform = %q", a.Platform)
	}

	// Normalize rejects an illegal pair even when both names are valid.
	bad := a
	bad.Mode = "tdx-h100"
	if _, err := bad.Normalize(); err == nil {
		t.Error("Normalize accepted tdx-h100 on b300-bridge")
	}
}
