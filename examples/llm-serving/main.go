// LLM serving under CC (Fig. 14): Llama-3-8B decode throughput across
// serving backends (HuggingFace eager vs vLLM), weight formats (BF16 vs
// 4-bit AWQ) and protection modes. The serving backend dominates; vLLM
// stays ahead even with protection on, and quantization helps until the
// dequantization tax outweighs the memory savings at large batch.
//
// The -mode flag picks which protection mode to compare against off:
//
//	go run ./examples/llm-serving -mode tee-io-bridge
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hccsim"
)

// serve runs one configuration, exiting on invalid backend/quant/mode names.
func serve(backend, quant string, batch int, mode string) hccsim.LLMResult {
	r, err := hccsim.Serve(backend, quant, batch, hccsim.Spec{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	ccMode := flag.String("mode", "tdx-h100",
		"protection mode to compare against off: "+strings.Join(hccsim.Modes(), ", ")+" (optionally +pipelined)")
	flag.Parse()

	// Validate the mode before the first simulation so a typo fails
	// immediately with the valid names, not mid-table.
	if _, err := hccsim.Configure(hccsim.Spec{Mode: *ccMode}); err != nil {
		log.Fatalf("llm-serving: invalid -mode %q: %v (valid: %s, optionally +pipelined)",
			*ccMode, err, strings.Join(hccsim.Modes(), ", "))
	}

	batches := []int{1, 8, 16, 32, 64, 128}
	modes := []string{"off", *ccMode}
	fmt.Printf("Llama-3-8B decode throughput (tokens/s), simulated H100, off vs %s\n", *ccMode)

	for _, backend := range []string{"hf", "vllm"} {
		fmt.Printf("\n%s backend:\n", backend)
		fmt.Printf("  %-28s", "config")
		for _, b := range batches {
			fmt.Printf(" %8s", fmt.Sprintf("b=%d", b))
		}
		fmt.Println()
		for _, quant := range []string{"bf16", "awq"} {
			for _, mode := range modes {
				fmt.Printf("  %-28s", quant+" "+mode)
				for _, b := range batches {
					r := serve(backend, quant, b, mode)
					fmt.Printf(" %8.0f", r.TokensPerSec)
				}
				fmt.Println()
			}
		}
	}

	fmt.Println("\nspeedup of vLLM over the HF/BF16/off baseline (the Fig. 14 metric):")
	for _, quant := range []string{"bf16", "awq"} {
		for _, mode := range modes {
			fmt.Printf("  %-28s", fmt.Sprintf("%s %s vllm", quant, mode))
			for _, b := range batches {
				base := serve("hf", "bf16", b, "off")
				v := serve("vllm", quant, b, mode)
				fmt.Printf(" %8.2f", v.TokensPerSec/base.TokensPerSec)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nall values stay above 1: the backend choice matters more than the")
	fmt.Println("protection mode.")
}
